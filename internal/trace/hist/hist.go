// Package hist provides log-bucketed (HDR-style) latency histograms with
// single-writer recording and mergeable shards.
//
// A Histogram is a fixed array of counters indexed by a logarithmic
// bucketing of the recorded value: values below 2^subBits are recorded
// exactly, and every octave above is split into 2^subBits sub-buckets, so
// the relative quantization error is bounded by 2^-(subBits+1) (~1.6%)
// across the whole range. The layout is fixed at compile time — recording
// never allocates — and the counters follow the same single-writer
// discipline as tm.Counter: only the owning thread writes a given
// histogram, any thread may read it concurrently (Merge and the quantile
// queries do), and a write is a plain load+store pair on the owner's
// cache lines, never a cross-thread read-modify-write.
//
// The intended shape is one Histogram (or a struct of them) per worker
// thread, merged into a fresh report-local Histogram when quantiles are
// wanted. Merge is associative and commutative over the counter arrays,
// so shards can be folded in any order or grouping.
package hist

import (
	"math"
	"sync/atomic"
)

const (
	// subBits is the per-octave resolution: each power of two is split
	// into 1<<subBits sub-buckets.
	subBits  = 5
	subCount = 1 << subBits

	// maxExp is the largest supported value exponent. Values at or above
	// 2^maxExp are clamped into the final bucket (about 36 minutes when
	// recording nanoseconds — far beyond any latency this repository
	// measures).
	maxExp = 41

	// nBuckets covers the exact range [0, subCount) plus (maxExp-subBits)
	// split octaves.
	nBuckets = subCount + (maxExp-subBits)*subCount
)

// Histogram is one log-bucketed value distribution. The zero value is
// empty and ready to use.
type Histogram struct {
	counts [nBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	// exp is the position of the most significant bit (>= subBits).
	exp := 63
	for v>>uint(exp)&1 == 0 {
		exp--
	}
	if exp >= maxExp {
		return nBuckets - 1
	}
	sub := int(v>>(uint(exp)-subBits)) & (subCount - 1)
	return subCount + (exp-subBits)*subCount + sub
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	exp := subBits + (i-subCount)/subCount
	sub := (i - subCount) % subCount
	return 1<<uint(exp) | int64(sub)<<(uint(exp)-subBits)
}

// bucketMid returns the representative (midpoint) value of bucket i.
func bucketMid(i int) int64 {
	lo := bucketLow(i)
	if i < subCount {
		return lo
	}
	exp := subBits + (i-subCount)/subCount
	width := int64(1) << (uint(exp) - subBits)
	return lo + width/2
}

// Add records one value (owner thread only). Negative values clamp to 0.
func (h *Histogram) Add(v int64) {
	if h == nil {
		return
	}
	c := &h.counts[bucketOf(v)]
	c.Store(c.Load() + 1)
	h.total.Store(h.total.Load() + 1)
	if v > 0 {
		h.sum.Store(h.sum.Load() + uint64(v))
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
// Unlike the quantiles it is exact, not quantized.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Merge folds o's counts into h. h must not be concurrently written by
// another goroutine (use a fresh report-local Histogram); o may still be
// receiving single-writer updates — Merge then observes some coherent
// prefix of them.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range h.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Store(h.counts[i].Load() + n)
		}
	}
	h.total.Store(h.total.Load() + o.total.Load())
	h.sum.Store(h.sum.Load() + o.sum.Load())
}

// Reset zeroes the histogram (owner thread, or after writers quiesced).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
}

// Quantile returns the value at quantile q in [0, 1]: the representative
// value of the bucket holding the ceil(q*count)-th smallest recording.
// The result is exact for values below 32 and within ~1.6% relative error
// above. Returns 0 for an empty histogram; q is clamped into [0, 1].
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketMid(i)
		}
	}
	// Racing writers can make total lag the bucket counts (or lead them);
	// fall back to the highest non-empty bucket.
	for i := nBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() != 0 {
			return bucketMid(i)
		}
	}
	return 0
}

// Max returns the representative value of the highest non-empty bucket
// (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	for i := nBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() != 0 {
			return bucketMid(i)
		}
	}
	return 0
}
