package trace

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// scriptedSink builds a sink holding a small, fully-known event stream:
// thread 0 runs one transaction that aborts twice (conflict, capacity)
// and commits on the software path; thread 1 commits first-try on HTM
// after a lemming wait and an escalation.
func scriptedSink() *Sink {
	s := NewSink(64)
	b0 := s.Thread(0)
	tx0 := uint64(0)<<32 | 1
	b0.Record(100, EvBegin, tx0, 0, 0, 0)
	b0.Record(110, EvPathFast, tx0, 0, 0, 0)
	b0.Record(200, EvHWAbort, tx0, 0, CauseConflict, 0)
	b0.Record(300, EvHWAbort, tx0, 0, CauseCapacity, 0)
	b0.Record(310, EvPathPart, tx0, 0, 0, 0)
	b0.Record(320, EvSubBegin, tx0, 0, 0, 0)
	b0.Record(350, EvSubCommit, tx0, 0, 0, 0)
	b0.Record(360, EvLockAcq, tx0, 2, 0, 0)
	b0.Record(380, EvRingPub, tx0, 0, 0, 0)
	b0.Record(390, EvLockRel, tx0, 2, 0, 0)
	b0.Record(400, EvCommit, tx0, 0, 0, PathSW)

	b1 := s.Thread(1)
	tx1 := uint64(1)<<32 | 1
	b1.Record(120, EvBegin, tx1, 0, 0, 0)
	b1.Record(130, EvLemmingEnter, tx1, 0, 0, 0)
	b1.Record(180, EvLemmingExit, tx1, 1, 0, 0)
	b1.Record(190, EvEscalate, tx1, 2, 0, 0)
	b1.Record(250, EvCommit, tx1, 0, 0, PathHTM)

	s.Mark("scripted-run")
	return s
}

func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, scriptedSink()); err != nil {
		t.Fatal(err)
	}
	tr, err := DecodeChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted trace does not round-trip: %v", err)
	}

	count := map[string]int{}
	var threads []int
	for _, e := range tr.TraceEvents {
		count[e.Ph+"/"+e.Name]++
		if e.Ph == "M" && e.Name == "thread_name" {
			threads = append(threads, e.TID)
		}
	}
	if len(threads) != 2 {
		t.Fatalf("thread_name metadata for %v, want 2 worker tracks", threads)
	}
	if count["M/process_name"] != 1 {
		t.Error("missing process_name metadata")
	}
	// Per-worker lifecycle instants.
	for _, want := range []string{"i/begin", "i/hw-abort", "i/path-fast", "i/path-partitioned",
		"i/sub-begin", "i/sub-commit", "i/lock-acquire", "i/lock-release", "i/ring-publish",
		"i/lemming-enter", "i/lemming-exit", "i/escalate"} {
		if count[want] == 0 {
			t.Errorf("missing %s event", want)
		}
	}
	// Transaction slices: one "tx sw" and one "tx htm" outer slice, three
	// attempt slices on thread 0 (two aborts + final) and one on thread 1.
	if count["X/tx sw"] != 1 || count["X/tx htm"] != 1 {
		t.Errorf("outer tx slices = %v", count)
	}
	attempts := 0
	for k, n := range count {
		if strings.HasPrefix(k, "X/attempt") {
			attempts += n
		}
	}
	if attempts != 4 {
		t.Errorf("attempt slices = %d, want 4", attempts)
	}
	// Flow chain: tx0 aborted twice → s, t, f all present with one id.
	if count["s/retry"] != 1 || count["t/retry"] != 1 || count["f/retry"] != 1 {
		t.Errorf("flow events = s:%d t:%d f:%d, want 1/1/1",
			count["s/retry"], count["t/retry"], count["f/retry"])
	}
	if count["i/scripted-run"] != 1 {
		t.Error("missing mark instant")
	}

	// Timestamps are microseconds: the 100ns begin must appear as 0.1.
	for _, e := range tr.TraceEvents {
		if e.Ph == "i" && e.Name == "begin" && e.TID == 0 {
			if e.TS != 0.1 {
				t.Errorf("begin ts = %v µs, want 0.1", e.TS)
			}
		}
	}
}

func TestWriteChromeDanglingEvents(t *testing.T) {
	s := NewSink(64)
	b := s.Thread(0)
	// Commit whose begin was overwritten, then an in-flight begin at cutoff.
	b.Record(100, EvCommit, 7, 0, 0, PathGL)
	b.Record(200, EvBegin, 8, 0, 0, 0)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, s); err != nil {
		t.Fatal(err)
	}
	tr, err := DecodeChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" {
			t.Fatalf("dangling events must not produce slices, got %q", e.Name)
		}
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, scriptedSink()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"t00 begin", "t00 hw-abort", "cause=conflict", "cause=capacity",
		"t00 commit", "path=sw", "t01 commit", "path=htm",
		"t01 lemming-exit", "kind=lemming", `mark "scripted-run"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
	// Global timestamp order (first column is the nanosecond timestamp).
	last := int64(-1)
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		fields := strings.Fields(ln)
		if len(fields) == 0 {
			continue
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("unparseable timestamp in line %q", ln)
		}
		if ts < last {
			t.Fatalf("text dump out of order at %q", ln)
		}
		last = ts
	}
}

func TestWriteTextRingWrapNote(t *testing.T) {
	s := NewSink(8)
	b := s.Thread(0)
	for i := int64(0); i < 20; i++ {
		b.Record(i, EvBegin, uint64(i), 0, 0, 0)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12 events overwritten") {
		t.Fatal("text dump must note ring overwrite")
	}
}

func TestDecodeChromeRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"traceEvents":[],"bogus":1}`,
		"trailing data": `{"traceEvents":[]} {"more":true}`,
		"wrong type":    `{"traceEvents":"nope"}`,
		"truncated":     `{"traceEvents":[{"name":"x"`,
	}
	for name, in := range cases {
		if _, err := DecodeChrome([]byte(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in)
		}
	}
	if _, err := DecodeChrome([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("minimal valid document rejected: %v", err)
	}
}

// FuzzDecodeChrome pins that decoding arbitrary bytes never panics, and
// that anything that decodes re-encodes and decodes again to the same
// event count (round-trip stability).
func FuzzDecodeChrome(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteChrome(&seed, scriptedSink()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"a","ph":"i","ts":1,"pid":1,"tid":0}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeChrome(data)
		if err != nil {
			return
		}
		re, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := DecodeChrome(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, re)
		}
		if len(tr2.TraceEvents) != len(tr.TraceEvents) {
			t.Fatalf("round trip changed event count: %d != %d",
				len(tr2.TraceEvents), len(tr.TraceEvents))
		}
	})
}
