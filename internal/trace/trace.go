// Package trace is the transaction-lifecycle flight recorder: per-thread,
// fixed-capacity, allocation-free event ring buffers recording every step
// a transaction takes through a TM system — begin, hardware aborts with
// their cause, path transitions fast→partitioned→slow, sub-HTM
// begin/commit, lock-signature traffic, ring publication, lemming waits,
// contention-manager escalations, degraded-mode edges, and the final
// commit — plus per-path and per-abort-cause latency histograms.
//
// # Memory model
//
// A Sink owns one Buffer and one LatShard per worker thread, each padded
// so neighbouring threads never share a cache line. A Buffer is
// single-writer: only the owning thread records into it (the same
// discipline tm.Stats shards follow), so recording is a bounds-masked
// store into a preallocated array plus a plain cursor bump — no locks, no
// atomic read-modify-write, and no allocation. Readers (the exporters)
// must run after the writers have quiesced (the harness joins its worker
// goroutines before exporting); the ring keeps the most recent Cap events
// per thread, silently overwriting the oldest — a flight recorder, not a
// complete log.
//
// # Timestamps and hardware windows
//
// Events carry a monotonic nanosecond timestamp obtained from Now. Now
// reads the clock (time.Since) and therefore must never run inside a
// simulated hardware-transaction window — on real TSX the vDSO clock read
// can abort the transaction, and the parthtm-vet htmregion analyzer
// rejects it statically. Record* methods, by contrast, are htmsafe by
// construction (no allocation, no fmt/time/sync, no scheduler calls):
// callers take the timestamp outside the window and may then record from
// anywhere. In this repository every recording site sits outside hardware
// windows anyway; the split keeps the discipline checkable.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace/hist"
)

// Kind enumerates the transaction lifecycle events.
type Kind uint8

const (
	// EvNone is the zero Kind; it marks unused ring slots.
	EvNone Kind = iota
	// EvBegin opens a transaction (ID identifies it; retries keep the ID).
	EvBegin
	// EvCommit closes a transaction; Path carries the committing path.
	EvCommit
	// EvPathFast marks entry into the fast (whole-hardware) level.
	EvPathFast
	// EvPathPart marks the transition onto the partitioned/software level.
	EvPathPart
	// EvPathSlow marks the transition onto the slow (global-lock) level.
	EvPathSlow
	// EvHWAbort is a hardware abort; Cause carries the abort taxonomy.
	EvHWAbort
	// EvSWAbort is a software-level abort (validation/conflict).
	EvSWAbort
	// EvSubBegin opens one sub-HTM transaction (partitioned path).
	EvSubBegin
	// EvSubCommit commits one sub-HTM transaction.
	EvSubCommit
	// EvLockAcq marks write-lock publication (signature bits or cells).
	EvLockAcq
	// EvLockRel marks write-lock release.
	EvLockRel
	// EvRingPub marks a ring publication (software commit made visible).
	EvRingPub
	// EvLemmingEnter marks the start of a wait on the optimistic gate.
	EvLemmingEnter
	// EvLemmingExit marks the end of that wait; Arg=1 when it expired.
	EvLemmingExit
	// EvEscalate is a contention-manager escalation; Arg is the kind
	// (0 budget, 1 starve, 2 lemming).
	EvEscalate
	// EvDegEnter marks a thread observing degraded mode switching on.
	EvDegEnter
	// EvDegLeave marks a thread observing degraded mode switching off.
	EvDegLeave
	// EvDegRun marks a transaction serialized by degraded mode.
	EvDegRun
	// EvShed marks a transaction serialized by governor admission control
	// (Arg 0 = load shedding at begin, 1 = time/attempt budget mid-flight).
	EvShed
	// EvBreakerTrip marks a thread's HTM circuit breaker opening.
	EvBreakerTrip
	// EvBreakerProbe marks a half-open probe transaction (hardware retried
	// while the breaker is otherwise open).
	EvBreakerProbe
	// EvBreakerClose marks the breaker closing after a successful probe.
	EvBreakerClose
	// EvWatchdog is a progress-watchdog alarm; Arg packs the alarm kind in
	// the high 32 bits and the offending thread in the low 32.
	EvWatchdog
	// EvDomainAcquire marks a cross-domain transaction publishing its
	// write-locks bits into one domain's signature (Arg = domain index).
	EvDomainAcquire
	// EvDomainPublish marks a cross-domain global commit publishing one
	// domain's ring entry (Arg = domain index).
	EvDomainPublish
	// EvDomainRelease marks a cross-domain commit or abort releasing one
	// domain's write-locks bits (Arg = domain index).
	EvDomainRelease

	kindCount
)

var kindNames = [kindCount]string{
	EvNone:          "none",
	EvBegin:         "begin",
	EvCommit:        "commit",
	EvPathFast:      "path-fast",
	EvPathPart:      "path-partitioned",
	EvPathSlow:      "path-slow",
	EvHWAbort:       "hw-abort",
	EvSWAbort:       "sw-abort",
	EvSubBegin:      "sub-begin",
	EvSubCommit:     "sub-commit",
	EvLockAcq:       "lock-acquire",
	EvLockRel:       "lock-release",
	EvRingPub:       "ring-publish",
	EvLemmingEnter:  "lemming-enter",
	EvLemmingExit:   "lemming-exit",
	EvEscalate:      "escalate",
	EvDegEnter:      "degraded-enter",
	EvDegLeave:      "degraded-leave",
	EvDegRun:        "degraded-run",
	EvShed:          "shed",
	EvBreakerTrip:   "breaker-trip",
	EvBreakerProbe:  "breaker-probe",
	EvBreakerClose:  "breaker-close",
	EvWatchdog:      "watchdog-alarm",
	EvDomainAcquire: "domain-acquire",
	EvDomainPublish: "domain-publish",
	EvDomainRelease: "domain-release",
}

// String returns the event kind's stable lower-case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Execution paths, in the order of the tm.Stats commit counters. The
// values mirror the commit-path split (HTM / SW / GL) every system
// reports.
const (
	PathHTM uint8 = iota // committed as hardware transaction(s)
	PathSW               // committed by the software framework / STM
	PathGL               // committed under the global lock
	PathCount
)

// PathName returns the stable short name of an execution path.
func PathName(p uint8) string {
	switch p {
	case PathHTM:
		return "htm"
	case PathSW:
		return "sw"
	case PathGL:
		return "gl"
	}
	return fmt.Sprintf("path(%d)", p)
}

// Abort causes, mirroring the htm.AbortReason taxonomy (trace does not
// import htm so the hardware model stays below this layer; exec converts
// with a plain uint8 cast, pinned by a test there).
const (
	CauseNone     uint8 = iota
	CauseConflict       // another thread touched a monitored line
	CauseCapacity       // transactional footprint exceeded the cache
	CauseExplicit       // the program aborted (xabort)
	CauseOther          // any other hardware event (timer interrupt)
	CauseCount
)

// CauseName returns the stable short name of an abort cause.
func CauseName(c uint8) string {
	switch c {
	case CauseNone:
		return "none"
	case CauseConflict:
		return "conflict"
	case CauseCapacity:
		return "capacity"
	case CauseExplicit:
		return "explicit"
	case CauseOther:
		return "other"
	}
	return fmt.Sprintf("cause(%d)", c)
}

// Event is one fixed-size lifecycle record. ID ties every event of one
// transaction together across its retries: the exporter links them with
// flow arrows.
type Event struct {
	TS     int64  // monotonic nanoseconds (trace.Now)
	ID     uint64 // thread<<32 | per-thread transaction sequence
	Arg    uint64 // event-specific payload
	Kind   Kind
	Cause  uint8 // abort taxonomy (EvHWAbort/EvSWAbort)
	Path   uint8 // execution path (EvCommit)
	Thread int32
}

// base anchors the monotonic clock; Durations from one process share it.
var base = time.Now()

// Now returns a monotonic nanosecond timestamp. It reads the clock and
// must be called outside hardware-transaction windows (htmregion enforces
// this); pass the result to Record*.
func Now() int64 { return time.Since(base).Nanoseconds() }

// Buffer is one thread's event ring. Only the owning thread may call
// Record*; any goroutine may snapshot it after the writer has quiesced.
// The trailing padding keeps the write cursor of neighbouring buffers on
// distinct cache lines.
type Buffer struct {
	ev     []Event
	mask   uint64
	pos    uint64
	thread int32
	_      [64 - 8*3 - 4]byte
}

// Record appends one event (owner thread only). It is allocation-free
// and htmsafe by construction: a masked array store and a cursor bump.
// All Record* methods tolerate a nil receiver as a no-op, so the disabled
// fast path is a single branch.
func (b *Buffer) Record(ts int64, k Kind, id, arg uint64, cause, path uint8) {
	if b == nil {
		return
	}
	b.ev[b.pos&b.mask] = Event{
		TS: ts, ID: id, Arg: arg,
		Kind: k, Cause: cause, Path: path, Thread: b.thread,
	}
	b.pos++
}

// RecordMark is Record with no transaction context (id 0): protocol-level
// markers such as degraded-mode edges.
func (b *Buffer) RecordMark(ts int64, k Kind, arg uint64) {
	b.Record(ts, k, 0, arg, 0, 0)
}

// Thread returns the buffer's owning thread index.
func (b *Buffer) Thread() int {
	if b == nil {
		return 0
	}
	return int(b.thread)
}

// Len returns the number of live events in the ring (at most Cap).
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	if b.pos < uint64(len(b.ev)) {
		return int(b.pos)
	}
	return len(b.ev)
}

// Cap returns the ring capacity.
func (b *Buffer) Cap() int {
	if b == nil {
		return 0
	}
	return len(b.ev)
}

// Dropped returns how many events the ring overwrote.
func (b *Buffer) Dropped() uint64 {
	if b == nil || b.pos < uint64(len(b.ev)) {
		return 0
	}
	return b.pos - uint64(len(b.ev))
}

// Events appends the ring's live events in recording order to out and
// returns the result. Call only after the owning thread has quiesced.
func (b *Buffer) Events(out []Event) []Event {
	if b == nil {
		return out
	}
	n := uint64(len(b.ev))
	start := uint64(0)
	if b.pos > n {
		start = b.pos - n
	}
	for i := start; i < b.pos; i++ {
		out = append(out, b.ev[i&b.mask])
	}
	return out
}

// LatShard is one thread's latency histograms: commit latency per
// execution path and begin-to-abort latency per abort cause. Same
// single-writer discipline as Buffer.
type LatShard struct {
	Path  [PathCount]hist.Histogram
	Abort [CauseCount]hist.Histogram
	_     [64]byte
}

// Mark is one labelled instant in the trace (the harness marks each
// system/rate run so one sink can record a whole sweep).
type Mark struct {
	TS    int64
	Label string
}

// Sink owns the per-thread buffers and latency shards of one tracing
// session. A nil *Sink disables tracing everywhere it is plumbed. Thread
// growth is mutex-guarded exactly like tm.Stats shards; the hot path
// (Record) touches only the calling thread's buffer.
type Sink struct {
	capPerThread int

	mu    sync.Mutex // guards slice growth and marks
	bufs  atomic.Pointer[[]*Buffer]
	lats  atomic.Pointer[[]*LatShard]
	marks []Mark
}

// DefaultCap is the per-thread ring capacity used when NewSink is given a
// non-positive capacity: 8k events ≈ 256 KiB per worker.
const DefaultCap = 1 << 13

// NewSink creates a sink whose per-thread rings hold capPerThread events
// (rounded up to a power of two; <= 0 selects DefaultCap).
func NewSink(capPerThread int) *Sink {
	if capPerThread <= 0 {
		capPerThread = DefaultCap
	}
	c := 1
	for c < capPerThread {
		c <<= 1
	}
	return &Sink{capPerThread: c}
}

// Thread returns thread id's event buffer, growing the set as needed.
// Callers on a measured path must cache the pointer per thread.
func (s *Sink) Thread(id int) *Buffer {
	if s == nil {
		return nil
	}
	if p := s.bufs.Load(); p != nil && id < len(*p) {
		return (*p)[id]
	}
	return s.growThread(id)
}

func (s *Sink) growThread(id int) *Buffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur []*Buffer
	if p := s.bufs.Load(); p != nil {
		cur = *p
	}
	if id < len(cur) {
		return cur[id]
	}
	next := make([]*Buffer, id+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		next[i] = &Buffer{
			ev:     make([]Event, s.capPerThread),
			mask:   uint64(s.capPerThread - 1),
			thread: int32(i),
		}
	}
	s.bufs.Store(&next)
	return next[id]
}

// Lat returns thread id's latency shard, growing the set as needed.
func (s *Sink) Lat(id int) *LatShard {
	if s == nil {
		return nil
	}
	if p := s.lats.Load(); p != nil && id < len(*p) {
		return (*p)[id]
	}
	return s.growLat(id)
}

func (s *Sink) growLat(id int) *LatShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cur []*LatShard
	if p := s.lats.Load(); p != nil {
		cur = *p
	}
	if id < len(cur) {
		return cur[id]
	}
	next := make([]*LatShard, id+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		next[i] = new(LatShard)
	}
	s.lats.Store(&next)
	return next[id]
}

// Mark records one labelled instant (not on the hot path; harness use).
func (s *Sink) Mark(label string) {
	if s == nil {
		return
	}
	ts := Now()
	s.mu.Lock()
	s.marks = append(s.marks, Mark{TS: ts, Label: label})
	s.mu.Unlock()
}

// Marks returns a copy of the recorded marks.
func (s *Sink) Marks() []Mark {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Mark, len(s.marks))
	copy(out, s.marks)
	return out
}

// buffers returns the current buffer set.
func (s *Sink) buffers() []*Buffer {
	if s == nil {
		return nil
	}
	if p := s.bufs.Load(); p != nil {
		return *p
	}
	return nil
}

// latShards returns the current latency-shard set.
func (s *Sink) latShards() []*LatShard {
	if s == nil {
		return nil
	}
	if p := s.lats.Load(); p != nil {
		return *p
	}
	return nil
}

// Events returns every live event across all threads, sorted by
// timestamp (ties broken by thread, then recording order, which the sort's
// stability preserves per buffer). Call after the workers have quiesced.
func (s *Sink) Events() []Event {
	var out []Event
	for _, b := range s.buffers() {
		out = b.Events(out)
	}
	sortEvents(out)
	return out
}

// Dropped returns the total events overwritten across all rings.
func (s *Sink) Dropped() uint64 {
	var n uint64
	for _, b := range s.buffers() {
		n += b.Dropped()
	}
	return n
}

// LatencyStat summarizes one histogram for reporting.
type LatencyStat struct {
	Count              uint64
	P50, P95, P99, Max int64
	Mean               float64
}

// statOf summarizes a merged histogram.
func statOf(h *hist.Histogram) LatencyStat {
	return LatencyStat{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
		Mean:  h.Mean(),
	}
}

// LatencySnapshot is the merged view of every thread's latency shard.
type LatencySnapshot struct {
	Path  [PathCount]LatencyStat  // commit latency per execution path
	Abort [CauseCount]LatencyStat // begin-to-abort latency per cause
}

// Latency merges the per-thread shards into one snapshot. Concurrent
// single-writer recording may still be in flight; the snapshot then
// reflects some coherent prefix per shard.
func (s *Sink) Latency() LatencySnapshot {
	var snap LatencySnapshot
	shards := s.latShards()
	for p := 0; p < int(PathCount); p++ {
		var m hist.Histogram
		for _, sh := range shards {
			m.Merge(&sh.Path[p])
		}
		snap.Path[p] = statOf(&m)
	}
	for c := 0; c < int(CauseCount); c++ {
		var m hist.Histogram
		for _, sh := range shards {
			m.Merge(&sh.Abort[c])
		}
		snap.Abort[c] = statOf(&m)
	}
	return snap
}

// ResetLatency zeroes every latency shard (between report rows; call with
// the workers quiesced).
func (s *Sink) ResetLatency() {
	for _, sh := range s.latShards() {
		for p := range sh.Path {
			sh.Path[p].Reset()
		}
		for c := range sh.Abort {
			sh.Abort[c].Reset()
		}
	}
}

// sortEvents orders events by (TS, Thread); stability preserves each
// buffer's recording order among equal timestamps.
func sortEvents(ev []Event) {
	sort.SliceStable(ev, func(i, j int) bool {
		if ev[i].TS != ev[j].TS {
			return ev[i].TS < ev[j].TS
		}
		return ev[i].Thread < ev[j].Thread
	})
}
