// Package repro is a from-scratch Go reproduction of "Brief Announcement:
// Managing Resource Limitation of Best-Effort HTM" (SPAA 2015) and its
// extended version — the Part-HTM hybrid transactional memory.
//
// The repository contains:
//
//   - internal/mem, internal/htm — a simulated word-addressable memory and
//     an Intel TSX-style best-effort hardware transactional memory over it
//     (cache-line conflict detection, L1 write capacity with set
//     associativity, timer-quantum aborts, strong atomicity);
//   - internal/core — Part-HTM and Part-HTM-O, the paper's contribution;
//   - internal/htmgl, internal/norec, internal/ringstm, internal/norecrh —
//     the paper's competitors;
//   - internal/bench, internal/stamp — every evaluated workload (N-reads
//     M-writes, linked list, EigenBench, and the seven STAMP applications);
//   - internal/harness, cmd/parthtm-bench — regeneration of every table and
//     figure of the paper's evaluation;
//   - bench_test.go (this directory) — one testing.B benchmark per table
//     and figure.
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
