// One testing.B benchmark per table and figure of the paper's evaluation.
//
// Each BenchmarkFigXY/SYSTEM measures committed transactions (b.N of them)
// of that figure's workload on that system at 4 threads; BenchmarkTable1
// measures whole labyrinth runs. The parthtm-bench command produces the
// full thread sweeps; these benchmarks give the per-system single numbers
// `go test -bench` users expect, plus ablation benchmarks for the design
// decisions called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/bench/eigen"
	"repro/internal/bench/list"
	"repro/internal/bench/nrmw"
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/stamp"
	"repro/internal/stamp/genome"
	"repro/internal/stamp/intruder"
	"repro/internal/stamp/kmeans"
	"repro/internal/stamp/labyrinth"
	"repro/internal/stamp/ssca2"
	"repro/internal/stamp/vacation"
	"repro/internal/stamp/yada"
	"repro/internal/tm"
	"repro/internal/trace"
)

const benchThreads = 4

func maxProcs() int { return runtime.GOMAXPROCS(0) }

// benchSystems is the per-figure comparison set (kept small so a full
// -bench=. sweep stays tractable; use cmd/parthtm-bench for all six).
var benchSystems = []string{"HTM-GL", "NOrec", "Part-HTM"}

// runMicro drives ops through the harness on parallel goroutines, one
// committed transaction per b.N iteration.
func runMicro(b *testing.B, words int, bind func(sys tm.System) harness.OpFunc) {
	for _, name := range benchSystems {
		b.Run(name, func(b *testing.B) {
			sys := harness.Build(name, harness.BuildOptions{
				DataWords: words, Threads: benchThreads, PhysCores: 4, Seed: 1,
			})
			op := bind(sys)
			var ids atomic.Int64
			b.ResetTimer()
			// RunParallel spawns GOMAXPROCS*parallelism workers; ask for
			// benchThreads of them even on a single-core host.
			b.SetParallelism((benchThreads + maxProcs() - 1) / maxProcs())
			b.RunParallel(func(pb *testing.PB) {
				id := int(ids.Add(1)-1) % benchThreads
				rng := rand.New(rand.NewSource(int64(id) + 42))
				for pb.Next() {
					op(id, rng)
				}
			})
		})
	}
}

func benchNRMW(b *testing.B, cfg nrmw.Config) {
	runMicro(b, cfg.MemWords(), func(sys tm.System) harness.OpFunc {
		w := nrmw.New(sys, benchThreads, cfg)
		return func(th int, rng *rand.Rand) { w.Op(th, rng) }
	})
}

func BenchmarkFig3aNReadsMWrites(b *testing.B) { benchNRMW(b, nrmw.Fig3a()) }

func BenchmarkFig3bBigReadSet(b *testing.B) {
	cfg := nrmw.Fig3b()
	// Scale the per-transaction read count down so one iteration stays
	// benchmark-sized; the read set still exceeds the L1.
	cfg.N = 20000
	benchNRMW(b, cfg)
}

func BenchmarkFig3cLongTransactions(b *testing.B) { benchNRMW(b, nrmw.Fig3c()) }

func benchList(b *testing.B, cfg list.Config) {
	cfg.Capacity = cfg.Size + 1_200_000
	runMicro(b, cfg.MemWords(), func(sys tm.System) harness.OpFunc {
		l := list.New(sys, cfg)
		return func(th int, rng *rand.Rand) { l.Op(th, rng) }
	})
}

func BenchmarkFig4aList1K(b *testing.B)  { benchList(b, list.Fig4a()) }
func BenchmarkFig4bList10K(b *testing.B) { benchList(b, list.Fig4b()) }

func benchEigen(b *testing.B, cfg eigen.Config) {
	runMicro(b, cfg.MemWords(), func(sys tm.System) harness.OpFunc {
		w := eigen.New(sys, benchThreads, cfg)
		return func(th int, rng *rand.Rand) { w.Op(th, rng) }
	})
}

func BenchmarkFig6aEigenMixed(b *testing.B) { benchEigen(b, eigen.Fig6a()) }

func BenchmarkFig6bEigenContended(b *testing.B) {
	cfg := eigen.Fig6b()
	cfg.Reads = 2000 // keep one iteration benchmark-sized
	benchEigen(b, cfg)
}

// benchStamp measures whole application runs (the Figure 5 unit of work).
func benchStamp(b *testing.B, mk func() stamp.App) {
	for _, name := range benchSystems {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				app := mk()
				sys := harness.Build(name, harness.BuildOptions{
					DataWords: app.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1,
				})
				app.Setup(sys)
				app.Run(benchThreads)
				if err := app.Validate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig5aKmeansLow(b *testing.B) {
	benchStamp(b, func() stamp.App { return kmeans.New(kmeans.LowContention()) })
}

func BenchmarkFig5bKmeansHigh(b *testing.B) {
	benchStamp(b, func() stamp.App { return kmeans.New(kmeans.HighContention()) })
}

func BenchmarkFig5cSSCA2(b *testing.B) {
	benchStamp(b, func() stamp.App { return ssca2.New(ssca2.Default()) })
}

func BenchmarkFig5dLabyrinth(b *testing.B) {
	benchStamp(b, func() stamp.App { return labyrinth.New(labyrinth.Default()) })
}

func BenchmarkFig5eIntruder(b *testing.B) {
	benchStamp(b, func() stamp.App { return intruder.New(intruder.Default()) })
}

func BenchmarkFig5fVacationLow(b *testing.B) {
	benchStamp(b, func() stamp.App { return vacation.New(vacation.LowContention()) })
}

func BenchmarkFig5gVacationHigh(b *testing.B) {
	benchStamp(b, func() stamp.App { return vacation.New(vacation.HighContention()) })
}

func BenchmarkFig5hYada(b *testing.B) {
	benchStamp(b, func() stamp.App { return yada.New(yada.Default()) })
}

func BenchmarkFig5iGenome(b *testing.B) {
	benchStamp(b, func() stamp.App { return genome.New(genome.Default()) })
}

// BenchmarkTable1Labyrinth measures the Table 1 scenario (whole labyrinth
// runs at 4 threads) for the two compared systems.
func BenchmarkTable1Labyrinth(b *testing.B) {
	for _, name := range []string{"HTM-GL", "Part-HTM"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				app := labyrinth.New(labyrinth.Default())
				sys := harness.Build(name, harness.BuildOptions{
					DataWords: app.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1,
				})
				app.Setup(sys)
				app.Run(benchThreads)
				if err := app.Validate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceOverhead measures the cost of event tracing on the Fig 3(a)
// workload: "off" is the baseline (no sink attached — the per-event check
// is one nil comparison), "on" records the full event stream and latency
// histograms. Compare the two to verify tracing-off stays within noise and
// to see the price of leaving tracing enabled.
func BenchmarkTraceOverhead(b *testing.B) {
	cfg := nrmw.Fig3a()
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			opts := harness.BuildOptions{
				DataWords: cfg.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1,
			}
			if mode == "on" {
				opts.Trace = trace.NewSink(0)
			}
			sys := harness.Build("Part-HTM", opts)
			w := nrmw.New(sys, benchThreads, cfg)
			var ids atomic.Int64
			b.ResetTimer()
			b.SetParallelism((benchThreads + maxProcs() - 1) / maxProcs())
			b.RunParallel(func(pb *testing.PB) {
				id := int(ids.Add(1)-1) % benchThreads
				rng := rand.New(rand.NewSource(int64(id) + 42))
				for pb.Next() {
					w.Op(id, rng)
				}
			})
		})
	}
}

// BenchmarkGovernorOverhead measures the cost of the resource governor on
// the Fig 3(a) workload: "off" is the ungoverned baseline, "on" attaches a
// default-config governor (breaker armed, no budgets) so every transaction
// pays the Begin/ChargeAttempt/Finish hooks. Compare the two to pin the
// attached-but-idle price at a few branches per transaction; the committed
// BENCH_baseline.json and the -compare gate watch the same edge in CI.
func BenchmarkGovernorOverhead(b *testing.B) {
	cfg := nrmw.Fig3a()
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			opts := harness.BuildOptions{
				DataWords: cfg.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1,
			}
			if mode == "on" {
				gcfg := governor.DefaultConfig()
				opts.Governor = &gcfg
			}
			sys := harness.Build("Part-HTM", opts)
			w := nrmw.New(sys, benchThreads, cfg)
			var ids atomic.Int64
			b.ResetTimer()
			b.SetParallelism((benchThreads + maxProcs() - 1) / maxProcs())
			b.RunParallel(func(pb *testing.PB) {
				id := int(ids.Add(1)-1) % benchThreads
				rng := rand.New(rand.NewSource(int64(id) + 42))
				for pb.Next() {
					w.Op(id, rng)
				}
			})
		})
	}
}

// BenchmarkProfOverhead measures the cost of the abort-attribution
// profiler on the Fig 3(a) workload: "off" is the unprofiled baseline
// (each hook is one nil check on the cached shard pointer), "on" attaches
// a default-config profile so every transaction records its footprint and
// every doom attributes its line. Compare the two to verify profiling-off
// stays within noise of BENCH_baseline.json and to see the price of
// leaving attribution enabled.
func BenchmarkProfOverhead(b *testing.B) {
	cfg := nrmw.Fig3a()
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			opts := harness.BuildOptions{
				DataWords: cfg.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1,
			}
			if mode == "on" {
				opts.Profile = prof.New(prof.Config{})
			}
			sys := harness.Build("Part-HTM", opts)
			w := nrmw.New(sys, benchThreads, cfg)
			var ids atomic.Int64
			b.ResetTimer()
			b.SetParallelism((benchThreads + maxProcs() - 1) / maxProcs())
			b.RunParallel(func(pb *testing.PB) {
				id := int(ids.Add(1)-1) % benchThreads
				rng := rand.New(rand.NewSource(int64(id) + 42))
				for pb.Next() {
					w.Op(id, rng)
				}
			})
		})
	}
}

// BenchmarkObsOverhead measures the cost of the live telemetry plane on
// the Fig 3(a) workload: "off" is the unobserved baseline, "on" registers
// the system (with trace sink and profile attached so every family is
// live) and runs a flight recorder polling the registry at its default
// 10ms cadence while the workload runs — the worst realistic observer
// load. The workers never touch obs state; the only possible cost is
// cache pressure from the poller reading the shared counter cells, which
// must stay within noise of the tracing-on baseline.
func BenchmarkObsOverhead(b *testing.B) {
	cfg := nrmw.Fig3a()
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			opts := harness.BuildOptions{
				DataWords: cfg.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1,
				Trace: trace.NewSink(0), Profile: prof.New(prof.Config{}),
			}
			if mode == "on" {
				opts.Obs = obs.NewRegistry()
			}
			sys := harness.Build("Part-HTM", opts)
			if mode == "on" {
				rec := obs.NewFlightRecorder(opts.Obs, obs.FlightConfig{Dir: b.TempDir()})
				rec.Start()
				defer rec.Stop()
			}
			w := nrmw.New(sys, benchThreads, cfg)
			var ids atomic.Int64
			b.ResetTimer()
			b.SetParallelism((benchThreads + maxProcs() - 1) / maxProcs())
			b.RunParallel(func(pb *testing.PB) {
				id := int(ids.Add(1)-1) % benchThreads
				rng := rand.New(rand.NewSource(int64(id) + 42))
				for pb.Next() {
					w.Op(id, rng)
				}
			})
		})
	}
}

// BenchmarkObsSample pins the sampling path itself: one coherent sample
// of a fully-instrumented system must stay allocation-free (the ReportAllocs
// line is the contract the flight recorder's steady state depends on).
func BenchmarkObsSample(b *testing.B) {
	cfg := nrmw.Fig3a()
	reg := obs.NewRegistry()
	sys := harness.Build("Part-HTM", harness.BuildOptions{
		DataWords: cfg.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1,
		Trace: trace.NewSink(0), Profile: prof.New(prof.Config{}), Obs: reg,
	})
	w := nrmw.New(sys, benchThreads, cfg)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		w.Op(0, rng)
	}
	var snap obs.Snapshot
	reg.Sample(&snap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Sample(&snap)
	}
}

// Ablation benchmarks (DESIGN.md §5): Part-HTM configuration variants on a
// partition-heavy workload.
func benchCoreVariant(b *testing.B, mut func(*core.Config)) {
	cfg := core.DefaultConfig()
	cfg.NoFastPath = true
	if mut != nil {
		mut(&cfg)
	}
	ecfg := eigen.Config{HotWords: 4096, Reads: 200, Writes: 20,
		Disjoint: false, PartitionEvery: 32}
	sys := harness.Build("Part-HTM", harness.BuildOptions{
		DataWords: ecfg.MemWords(), Threads: benchThreads, PhysCores: 4, Seed: 1, Core: &cfg,
	})
	w := eigen.New(sys, benchThreads, ecfg)
	var ids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(ids.Add(1)-1) % benchThreads
		rng := rand.New(rand.NewSource(int64(id) + 7))
		for pb.Next() {
			w.Op(id, rng)
		}
	})
}

func BenchmarkAblationValidateEverySub(b *testing.B) {
	benchCoreVariant(b, nil)
}

func BenchmarkAblationValidateEndOnly(b *testing.B) {
	benchCoreVariant(b, func(c *core.Config) { c.ValidateEverySub = false })
}

func BenchmarkAblationLockAtSubCommit(b *testing.B) {
	benchCoreVariant(b, nil)
}

func BenchmarkAblationLockPerWrite(b *testing.B) {
	benchCoreVariant(b, func(c *core.Config) { c.LockPerWrite = true })
}

func BenchmarkAblationRing1024(b *testing.B) {
	benchCoreVariant(b, nil)
}

func BenchmarkAblationRing16(b *testing.B) {
	benchCoreVariant(b, func(c *core.Config) { c.RingSize = 16 })
}

// BenchmarkAblationRedoLast contrasts Part-HTM's eager partitioning with an
// SpHT-style scheme whose last sub-transaction carries the whole write set
// (emulated by removing partition points from a write-capacity-bound
// transaction — the final footprint is what matters).
func BenchmarkAblationRedoLast(b *testing.B) {
	for _, variant := range []struct {
		name           string
		partitionEvery int
	}{{"eager-partitioned", 128}, {"redo-last-subtx", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := nrmw.Config{ArraySize: 65536, N: 8, M: 1400,
				PartitionEvery: variant.partitionEvery}
			coreCfg := core.DefaultConfig()
			coreCfg.AutoPartition = variant.partitionEvery > 0
			sys := harness.Build("Part-HTM", harness.BuildOptions{
				DataWords: cfg.MemWords(), Threads: benchThreads, PhysCores: 4,
				Seed: 1, Core: &coreCfg,
			})
			w := nrmw.New(sys, benchThreads, cfg)
			var ids atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(ids.Add(1)-1) % benchThreads
				rng := rand.New(rand.NewSource(int64(id) + 3))
				for pb.Next() {
					w.Op(id, rng)
				}
			})
		})
	}
}
