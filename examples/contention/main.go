// Contention example: the Figure 6(b) scenario in miniature.
//
// Transactions read a large slice of a hot shared array and write a few
// slots of it — big, contended transactions. Under HTM-GL they thrash:
// too big for one hardware transaction, so they serialize behind the
// global lock. Part-HTM's sub-HTM transactions commit piecewise and its
// write locks briefly stall true conflictors instead of restarting
// everyone, so it keeps the highest throughput. The two STMs pay their
// per-access instrumentation on every one of the ~2K reads.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bench/eigen"
	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/norec"
	"repro/internal/tm"
)

const (
	threads = 8 // beyond the modelled 4 physical cores: budgets halve
	ops     = 30
)

func run(name string, sys tm.System) {
	cfg := eigen.Fig6b() // 32K hot words, 10K reads + 100 writes, 50% repeats
	b := eigen.New(sys, threads, cfg)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			for i := 0; i < ops; i++ {
				b.Op(id, rng)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := sys.Stats().Snapshot()
	fmt.Printf("%-10s %8.0f tx/sec | commits: HTM=%d SW=%d GL=%d | aborts: conflict=%d capacity=%d other=%d\n",
		name, float64(threads*ops)/elapsed.Seconds(),
		st.CommitsHTM, st.CommitsSW, st.CommitsGL,
		st.AbortsConflict, st.AbortsCapacity, st.AbortsOther)
}

func main() {
	cfg := eigen.Fig6b()
	fmt.Printf("hot-array contention: %dK words, %d reads + %d writes per tx, %d threads x %d tx\n",
		cfg.HotWords/1024, cfg.Reads, cfg.Writes, threads, ops)
	const words = 1 << 18
	// Threads exceed the modelled physical cores: halve the cache budgets
	// (hyper-threading), as the harness does.
	ecfg := htm.DefaultConfig().Oversubscribed()
	run("HTM-GL", htmgl.New(htm.New(mem.New(words), ecfg), htmgl.DefaultConfig()))
	run("NOrec", norec.New(mem.New(words), threads))
	run("Part-HTM", core.New(htm.New(mem.New(words), ecfg), threads, core.DefaultConfig()))
}
