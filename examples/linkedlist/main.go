// Linked-list example: the Figure 4(b) scenario in miniature.
//
// A 10K-element sorted linked list is hammered with 50% updates from four
// threads, once on HTM-GL and once on Part-HTM, printing the throughput
// and path breakdown of each. Traversals read thousands of cache lines —
// past the hardware read budget — so HTM-GL degenerates to its global
// lock while Part-HTM splits each traversal into sub-HTM transactions.
//
// Run with: go run ./examples/linkedlist
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bench/list"
	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/tm"
)

const (
	threads = 4
	ops     = 400
)

func engineConfig() htm.Config {
	cfg := htm.DefaultConfig()
	// Scale the read budget down so the 10K list's traversals exceed it
	// even single-threaded (the paper's Xeon hits this through sheer size).
	cfg.ReadLinesSoft = 512
	cfg.ReadLinesHard = 2048
	return cfg
}

func run(name string, mk func(words int) tm.System) {
	cfg := list.Fig4b()
	cfg.Capacity = cfg.Size + threads*ops
	sys := mk(cfg.MemWords() + 1<<18)
	l := list.New(sys, cfg)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 99))
			for i := 0; i < ops; i++ {
				l.Op(id, rng)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if !l.Validate() {
		panic(name + ": list corrupted")
	}
	st := sys.Stats().Snapshot()
	fmt.Printf("%-10s %8.0f ops/sec | commits: HTM=%d SW=%d GL=%d | aborts: conflict=%d capacity=%d other=%d\n",
		name, float64(threads*ops)/elapsed.Seconds(),
		st.CommitsHTM, st.CommitsSW, st.CommitsGL,
		st.AbortsConflict, st.AbortsCapacity, st.AbortsOther)
}

func main() {
	fmt.Printf("sorted linked list, %d elements, 50%% updates, %d threads x %d ops\n",
		list.Fig4b().Size, threads, ops)
	run("HTM-GL", func(words int) tm.System {
		return htmgl.New(htm.New(mem.New(words), engineConfig()), htmgl.DefaultConfig())
	})
	run("Part-HTM", func(words int) tm.System {
		return core.New(htm.New(mem.New(words), engineConfig()), threads, core.DefaultConfig())
	})
}
