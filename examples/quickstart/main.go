// Quickstart: concurrent bank transfers on Part-HTM.
//
// Builds a simulated memory and best-effort HTM engine, creates a Part-HTM
// system, and runs concurrent transfer transactions. Small transfers commit
// on the hardware fast path; a periodic full-audit transaction reads every
// account — too big a read set for one hardware transaction on a scaled-
// down cache model — and is transparently committed on the partitioned
// path instead of serializing the bank behind a global lock.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/tm"
)

const (
	accounts    = 512
	initBalance = 1000
	workers     = 4
	transfers   = 2000
)

func main() {
	// 1. Simulated memory and a best-effort HTM with a deliberately small
	//    read budget so the audit transaction cannot fit in hardware.
	m := mem.New(1 << 20)
	ecfg := htm.DefaultConfig()
	ecfg.ReadLinesSoft = 64
	ecfg.ReadLinesHard = 128
	eng := htm.New(m, ecfg)

	// 2. Part-HTM on top.
	sys := core.New(eng, workers, core.DefaultConfig())

	// 3. The bank: one account per cache line.
	base := m.AllocLines(accounts)
	acct := func(i int) mem.Addr { return base + mem.Addr(i*mem.LineWords) }
	for i := 0; i < accounts; i++ {
		m.Store(acct(i), initBalance)
	}

	// 4. Concurrent transfers plus periodic audits.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 7))
			for i := 0; i < transfers; i++ {
				if i%100 == 99 {
					// Full audit: reads all 512 account lines. Far beyond
					// the hardware read budget, so Part-HTM partitions it.
					// Accumulate in a body-local and publish once: the body
					// may rerun on abort, so captured variables must be
					// write-only result slots (enforced by parthtm-vet).
					var total uint64
					sys.Atomic(id, func(x tm.Tx) {
						var t uint64
						for k := 0; k < accounts; k++ {
							t += x.Read(acct(k))
							if k%64 == 63 {
								x.Pause() // partition point
							}
						}
						total = t
					})
					if total != accounts*initBalance {
						panic(fmt.Sprintf("audit saw inconsistent total %d", total))
					}
					continue
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amount := uint64(rng.Intn(10))
				sys.Atomic(id, func(x tm.Tx) {
					f := x.Read(acct(from))
					t := x.Read(acct(to))
					if from != to && f >= amount {
						x.Write(acct(from), f-amount)
						x.Write(acct(to), t+amount)
					}
				})
			}
		}(w)
	}
	wg.Wait()

	// 5. Report.
	var total uint64
	for i := 0; i < accounts; i++ {
		total += m.Load(acct(i))
	}
	st := sys.Stats().Snapshot()
	fmt.Printf("final total balance: %d (expected %d)\n", total, accounts*initBalance)
	fmt.Printf("commits: fast(HTM)=%d partitioned(SW)=%d global-lock=%d\n",
		st.CommitsHTM, st.CommitsSW, st.CommitsGL)
	fmt.Printf("aborts: conflict=%d capacity=%d explicit=%d other=%d\n",
		st.AbortsConflict, st.AbortsCapacity, st.AbortsExplicit, st.AbortsOther)
	if total != accounts*initBalance {
		panic("balance invariant violated")
	}
	if st.CommitsSW == 0 {
		panic("expected the audits to use the partitioned path")
	}
	fmt.Println("ok: audits committed on the partitioned path, transfers in hardware")
}
