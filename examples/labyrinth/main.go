// Labyrinth example: maze routing with transactions that cannot fit in
// best-effort HTM (the paper's §2 motivating application, Table 1).
//
// Routes a batch of source→destination requests on a shared grid with four
// threads, comparing HTM-GL and Part-HTM, and prints each system's abort
// breakdown — reproducing in miniature the resource-failure profile that
// motivates partitioning.
//
// Run with: go run ./examples/labyrinth
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/htmgl"
	"repro/internal/mem"
	"repro/internal/stamp/labyrinth"
	"repro/internal/tm"
)

const threads = 4

func run(name string, mk func(words int) (tm.System, *htm.Engine)) {
	app := labyrinth.New(labyrinth.Default())
	sys, eng := mk(app.MemWords() + 1<<18)
	app.Setup(sys)
	start := time.Now()
	app.Run(threads)
	elapsed := time.Since(start)
	if err := app.Validate(); err != nil {
		panic(err)
	}
	es := eng.Stats()
	st := sys.Stats().Snapshot()
	fmt.Printf("%-10s %6.2fs | routed=%d failed=%d | commits HTM=%d SW=%d GL=%d | HTM aborts: conflict=%d capacity=%d other=%d\n",
		name, elapsed.Seconds(), app.Routed(), app.Failed(),
		st.CommitsHTM, st.CommitsSW, st.CommitsGL,
		es.AbortsConflict.Load(), es.AbortsCapacity.Load(), es.AbortsOther.Load())
}

func main() {
	cfg := labyrinth.Default()
	fmt.Printf("maze routing: %dx%d grid, %d requests, %d threads\n",
		cfg.W, cfg.H, cfg.Pairs, threads)
	run("HTM-GL", func(words int) (tm.System, *htm.Engine) {
		eng := htm.New(mem.New(words), htm.DefaultConfig())
		return htmgl.New(eng, htmgl.DefaultConfig()), eng
	})
	run("Part-HTM", func(words int) (tm.System, *htm.Engine) {
		eng := htm.New(mem.New(words), htm.DefaultConfig())
		return core.New(eng, threads, core.DefaultConfig()), eng
	})
}
