// Command parthtm-bench regenerates the tables and figures of the Part-HTM
// paper's evaluation against this repository's simulated best-effort HTM.
//
// Usage:
//
//	parthtm-bench -exp table1            # one experiment
//	parthtm-bench -exp all               # everything, in paper order
//	parthtm-bench -list                  # available experiment ids
//	parthtm-bench -exp fig4b -threads 1,2,4,8 -duration 1s
//	parthtm-bench -exp fig3a -systems Part-HTM,HTM-GL
//	parthtm-bench -exp chaos                 # fault-injection sweep
//	parthtm-bench -exp chaos -fault 0.25     # compare rate 0 vs 0.25
//	parthtm-bench -exp table1 -json          # structured output
//	parthtm-bench -exp all -json -out results.json
//	parthtm-bench -exp chaos -trace trace.json   # Perfetto/Chrome trace
//	parthtm-bench -exp chaos -trace-text events.txt
//	parthtm-bench -trace-check trace.json    # validate a trace artifact
//	parthtm-bench -compare old.json new.json # throughput/abort deltas
//	parthtm-bench -compare -compare-max-drop 10 old.json new.json  # CI gate
//	parthtm-bench -exp soak -campaign storm  # multi-phase chaos campaign
//	parthtm-bench -exp table1,chaos -governor    # several experiments, governed
//	parthtm-bench -exp chaos -prof               # abort-attribution profile
//	parthtm-bench -exp chaos -prof-out series.csv  # time-series export (.csv or JSON)
//	parthtm-bench -exp heatmap -prof-check       # assert the planted hotspot is found
//	parthtm-bench -exp domains                   # sharded-domain sweep (N x cross-ratio)
//	parthtm-bench -exp domains -domains 1,4 -cross 0,0.2
//	parthtm-bench -exp soak -serve :9090         # live OpenMetrics at /metrics
//	parthtm-bench -exp soak -watch               # in-terminal live dashboard
//	parthtm-bench -exp soak -flight /tmp/flight  # black-box flight recorder
//	parthtm-bench -metrics-check scrape.txt      # validate an OpenMetrics scrape
//
// With -serve the run exposes the live telemetry plane over HTTP while the
// experiments execute: /metrics serves OpenMetrics text (scrape it with
// Prometheus), /healthz a liveness probe, and /snapshot the same coherent
// sample as JSON. Every system an experiment builds registers its counter
// sources with the registry; each scrape takes exactly one coherent
// snapshot. -watch renders a refreshing per-system dashboard (throughput,
// abort mix, degraded/breaker state, p99 per path) on stderr from the same
// registry.
//
// With -flight DIR a black-box flight recorder samples the registry in the
// background and, when a watchdog alarm fires, a breaker trips repeatedly,
// or a soak phase ends degraded, dumps the recent history into DIR as a
// timestamped artifact pair: a Chrome/Perfetto trace (validates with
// -trace-check) and a metrics CSV. SIGQUIT forces a best-effort dump.
// -wd-interval and -wd-stall tighten the soak watchdog (CI uses a
// hair-trigger setting to force an alarm deterministically).
//
// By default each experiment prints one aligned text table, with the same
// rows and series the paper's figures plot. With -json the run instead
// emits one JSON document (a ResultSet: per-system commit-path splits,
// hardware abort taxonomy, and robustness counters included); -out writes
// the output to a file instead of stdout. Progress and timing go to stderr
// whenever stdout carries the artifact.
//
// With -trace the run additionally records every transaction lifecycle
// event into per-thread ring buffers and writes a Chrome trace-event JSON
// file — open it at https://ui.perfetto.dev (or chrome://tracing) to see
// one track per worker thread, nested transaction/attempt slices, and flow
// arrows linking the retries of each transaction. -trace-text writes the
// same events as a plain sorted text listing. Traced reports also gain
// per-commit-path and per-abort-cause latency quantile tables (p50/p95/p99
// in both the text and JSON renderings). The ring buffers are fixed-size
// (newest events win), so traces of long runs cover the tail of the run.
//
// With -prof the run attaches the abort-attribution profiler to every
// system: reports gain the hot-conflict-line table (SpaceSaving top-K)
// and footprint quantiles per commit-path class and outcome, and a
// background sampler records the tm/governor counters as a time series.
// -prof-out writes that series to a file (CSV when the path ends in .csv,
// JSON otherwise); -prof-check makes profiled experiments assert their
// acceptance invariants (the heatmap experiment fails unless the planted
// hot line ranks top of the sketch and the packed layout shows the
// conflict-abort excess). Both imply -prof.
//
// -compare decodes two -json artifacts and prints benchstat-style deltas:
// per (experiment, system, threads, fault rate), the projected throughput
// and abort-rate changes. Profile blocks ride along in the JSON but are
// deliberately ignored by the comparison. -trace-check validates that a
// -trace artifact decodes as strict Chrome trace JSON (the CI smoke step).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/governor"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/trace"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		listExps = flag.Bool("list", false, "list available experiments")
		threads  = flag.String("threads", "", "comma-separated thread counts (default per experiment)")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement window per data point")
		systems  = flag.String("systems", "", "comma-separated systems (default per experiment)")
		cores    = flag.Int("cores", 4, "modelled physical cores (hyper-threading capacity scaling beyond this)")
		seed     = flag.Int64("seed", 1, "seed for the probabilistic hardware models")
		faultR   = flag.Float64("fault", 0, "chaos fault rate in [0,1]: replaces the chaos sweep with {0, rate}")
		jsonOut  = flag.Bool("json", false, "emit one JSON document (a ResultSet) instead of text tables")
		outPath  = flag.String("out", "", "write the output to this file instead of stdout")
		tracePth = flag.String("trace", "", "record transaction events and write a Chrome/Perfetto trace JSON file")
		traceTxt = flag.String("trace-text", "", "record transaction events and write a plain-text event listing")
		traceCap = flag.Int("trace-cap", 0, "per-thread trace ring capacity in events (0 = default, rounded up to a power of two)")
		traceChk = flag.String("trace-check", "", "validate that the given file decodes as Chrome trace JSON, then exit")
		compare  = flag.Bool("compare", false, "compare two -json artifacts (old.json new.json) and print the deltas")
		maxDrop  = flag.Float64("compare-max-drop", 0, "with -compare: exit 1 if any matched row's throughput dropped by more than this percentage")
		governed = flag.Bool("governor", false, "attach a resource governor (admission budgets + HTM circuit breaker) to every system")
		campaign = flag.String("campaign", "", "soak chaos-campaign preset: storm (default) or ramp")
		profOn   = flag.Bool("prof", false, "attach the abort-attribution profiler: hot-line/footprint report tables plus a background time-series sampler")
		profOut  = flag.String("prof-out", "", "write the profiler time series to this file (.csv for CSV, JSON otherwise); implies -prof")
		profChk  = flag.Bool("prof-check", false, "fail experiments whose profile acceptance checks do not hold (heatmap); implies -prof")
		domains  = flag.String("domains", "", "comma-separated domain counts for the domains experiment (default 1,2,4,8)")
		crossR   = flag.String("cross", "", "comma-separated cross-domain ratios in [0,1] for the domains experiment (default 0,0.2)")
		serve    = flag.String("serve", "", "serve live OpenMetrics on this address (/metrics, /healthz, /snapshot) while experiments run")
		watch    = flag.Bool("watch", false, "render a refreshing live dashboard on stderr while experiments run")
		flight   = flag.String("flight", "", "enable the black-box flight recorder, dumping artifacts into this directory")
		metChk   = flag.String("metrics-check", "", "validate that the given file parses as strict OpenMetrics text, then exit")
		wdIntvl  = flag.Duration("wd-interval", 0, "override the soak watchdog sampling interval (0 = experiment default)")
		wdStall  = flag.Int("wd-stall", 0, "override the soak watchdog stall-sample threshold (0 = experiment default)")
	)
	flag.Parse()

	if *traceChk != "" {
		runTraceCheck(*traceChk)
		return
	}
	if *metChk != "" {
		runMetricsCheck(*metChk)
		return
	}
	if *compare {
		runCompare(flag.Args(), *maxDrop)
		return
	}
	if *faultR < 0 {
		*faultR = 0
	}
	if *faultR > 1 {
		*faultR = 1
	}

	if *listExps {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "parthtm-bench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.Options{
		Duration:  *duration,
		PhysCores: *cores,
		Seed:      *seed,
		FaultRate: *faultR,
		Campaign:  *campaign,
	}
	if *governed {
		gcfg := governor.DefaultConfig()
		opts.Governor = &gcfg
	}
	var sink *trace.Sink
	if *tracePth != "" || *traceTxt != "" || *flight != "" {
		// -flight needs the event rings even when no -trace file was asked
		// for: the sink IS the flight recorder's black-box event history.
		sink = trace.NewSink(*traceCap)
		opts.Trace = sink
	}
	var profile *prof.Profile
	if *profOn || *profOut != "" || *profChk {
		profile = prof.New(prof.Config{})
		profile.Start()
		opts.Profile = profile
		opts.ProfCheck = *profChk
	}
	if *wdIntvl > 0 || *wdStall > 0 {
		wcfg := governor.DefaultWatchdogConfig()
		if *wdIntvl > 0 {
			wcfg.Interval = *wdIntvl
		}
		if *wdStall > 0 {
			wcfg.StallSamples = *wdStall
		}
		opts.Watchdog = &wcfg
	}
	var (
		registry *obs.Registry
		server   *obs.Server
		watcher  *obs.Watch
		recorder *obs.FlightRecorder
	)
	if *serve != "" || *watch || *flight != "" {
		registry = obs.NewRegistry()
		opts.Obs = registry
	}
	if *serve != "" {
		server = obs.NewServer(registry)
		addr, err := server.Start(*serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obs: serving /metrics /healthz /snapshot on http://%s\n", addr)
	}
	if *watch {
		watcher = obs.NewWatch(registry, os.Stderr, 0)
		watcher.Start()
	}
	if *flight != "" {
		if err := os.MkdirAll(*flight, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %v\n", err)
			os.Exit(1)
		}
		recorder = obs.NewFlightRecorder(registry, obs.FlightConfig{Dir: *flight})
		recorder.SetSink(sink)
		recorder.Start()
		defer recorder.InstallSIGQUIT()()
		opts.Flight = recorder
	}
	// Long runs and telemetry-plane runs emit progress lines so a hung
	// nightly job is diagnosable from its log; -watch owns stderr instead.
	if !*watch && (*duration >= time.Second || *serve != "" || *flight != "") {
		opts.Progress = os.Stderr
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "parthtm-bench: bad -threads value %q\n", part)
				os.Exit(2)
			}
			opts.Threads = append(opts.Threads, n)
		}
	}
	if *systems != "" {
		for _, part := range strings.Split(*systems, ",") {
			opts.Systems = append(opts.Systems, strings.TrimSpace(part))
		}
	}
	if *domains != "" {
		for _, part := range strings.Split(*domains, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "parthtm-bench: bad -domains value %q\n", part)
				os.Exit(2)
			}
			opts.Domains = append(opts.Domains, n)
		}
	}
	if *crossR != "" {
		for _, part := range strings.Split(*crossR, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || r < 0 || r > 1 {
				fmt.Fprintf(os.Stderr, "parthtm-bench: bad -cross value %q\n", part)
				os.Exit(2)
			}
			opts.Cross = append(opts.Cross, r)
		}
	}

	// Text to stdout streams as today; when the artifact is JSON or goes to
	// a file, progress moves to stderr and the artifact is written whole.
	streaming := !*jsonOut && *outPath == ""
	var set harness.ResultSet
	run := func(e harness.Experiment) {
		if streaming {
			fmt.Printf("== %s: %s\n", e.ID, e.Title)
		}
		start := time.Now()
		res, err := e.Execute(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if streaming {
			os.Stdout.WriteString(res.Text())
			fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		} else {
			fmt.Fprintf(os.Stderr, "== %s done in %.1fs\n", e.ID, time.Since(start).Seconds())
		}
		set.Results = append(set.Results, res)
	}

	if *expID == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
	} else {
		for _, id := range strings.Split(*expID, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "parthtm-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			run(e)
		}
	}
	if watcher != nil {
		watcher.Stop()
		fmt.Fprintln(os.Stderr)
	}
	if recorder != nil {
		recorder.Stop()
		// End of run is a quiesce point: flush any trigger still armed.
		if name, err := recorder.Flush("end"); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: flight dump: %v\n", err)
			os.Exit(1)
		} else if name != "" {
			fmt.Fprintf(os.Stderr, "flight: dumped %s\n", name)
		}
		if dumps := recorder.Dumps(); len(dumps) > 0 {
			fmt.Fprintf(os.Stderr, "flight: %d artifact(s) in %s\n", len(dumps), *flight)
		}
	}
	if server != nil {
		server.Stop()
	}
	if sink != nil {
		writeTrace(sink, *tracePth, *traceTxt)
	}
	if profile != nil {
		profile.Stop()
		if *profOut != "" {
			writeProfSeries(profile, *profOut)
		}
	}
	if streaming {
		return
	}

	var artifact []byte
	if *jsonOut {
		data, err := json.MarshalIndent(&set, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: encoding results: %v\n", err)
			os.Exit(1)
		}
		artifact = append(data, '\n')
	} else {
		var sb strings.Builder
		for _, res := range set.Results {
			fmt.Fprintf(&sb, "== %s: %s\n", res.ID, res.Title)
			sb.WriteString(res.Text())
			sb.WriteByte('\n')
		}
		artifact = []byte(sb.String())
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, artifact, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %v\n", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(artifact)
	}
}

// writeTrace renders the recorded events to the requested artifacts.
func writeTrace(sink *trace.Sink, chromePath, textPath string) {
	write := func(path string, render func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %v\n", err)
			os.Exit(1)
		}
		if err := render(f); err == nil {
			err = f.Close()
			if err == nil {
				return
			}
		} else {
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "parthtm-bench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if chromePath != "" {
		write(chromePath, func(f *os.File) error { return trace.WriteChrome(f, sink) })
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s (open at https://ui.perfetto.dev)\n",
			len(sink.Events()), chromePath)
		if d := sink.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: %d older events overwritten by the ring (raise -trace-cap to keep more)\n", d)
		}
	}
	if textPath != "" {
		write(textPath, func(f *os.File) error { return trace.WriteText(f, sink) })
	}
}

// writeProfSeries renders the profiler's recorded time series: CSV when
// the path ends in .csv, indented JSON (samples + marks) otherwise.
func writeProfSeries(p *prof.Profile, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: %v\n", err)
		os.Exit(1)
	}
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		err = p.WriteCSV(f)
	} else {
		err = p.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "prof: %d samples, %d marks -> %s\n",
		len(p.Samples()), len(p.Marks()), path)
}

// runTraceCheck validates a -trace artifact: strict Chrome trace-event
// JSON that our own decoder round-trips. Exit 0 on success.
func runTraceCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: -trace-check: %v\n", err)
		os.Exit(1)
	}
	ct, err := trace.DecodeChrome(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: -trace-check %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok, %d trace events\n", path, len(ct.TraceEvents))
}

// runMetricsCheck validates an OpenMetrics scrape artifact with the same
// strict parser the exporter round-trip tests use. Exit 0 on success.
func runMetricsCheck(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: -metrics-check: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	exp, err := obs.ParseExposition(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: -metrics-check %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: ok, %d metric families, %d samples\n", path, len(exp.Families()), len(exp.Points))
}

// runCompare decodes two -json artifacts and prints per-system deltas.
// With maxDrop > 0 it then applies the regression gate: any matched row
// whose projected throughput fell by more than maxDrop percent fails the
// run with exit status 1 (the CI baseline check).
func runCompare(paths []string, maxDrop float64) {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "parthtm-bench: -compare needs exactly two arguments: old.json new.json")
		os.Exit(2)
	}
	load := func(path string) *harness.ResultSet {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: -compare: %v\n", err)
			os.Exit(1)
		}
		set, err := harness.DecodeResultSet(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: -compare %s: not a parthtm-bench -json artifact: %v\n", path, err)
			os.Exit(1)
		}
		return set
	}
	oldSet, newSet := load(paths[0]), load(paths[1])
	out, err := harness.CompareResultSets(oldSet, newSet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: -compare: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.WriteString(out)
	if maxDrop <= 0 {
		return
	}
	bad, err := harness.CheckRegression(oldSet, newSet, maxDrop)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-bench: -compare-max-drop: %v\n", err)
		os.Exit(1)
	}
	if len(bad) == 0 {
		fmt.Fprintf(os.Stderr, "regression gate: all matched rows within %.1f%% of baseline\n", maxDrop)
		return
	}
	fmt.Fprintf(os.Stderr, "regression gate: %d row(s) dropped more than %.1f%%:\n", len(bad), maxDrop)
	for _, r := range bad {
		fmt.Fprintf(os.Stderr, "  %s/%s@%d rate=%.2f %s: %.1f -> %.1f K tx/s (%.1f%%)\n",
			r.Key.ID, r.Key.System, r.Key.Threads, r.Key.FaultRate, r.Key.Phase,
			r.OldKTxs, r.NewKTxs, 100*(r.NewKTxs/r.OldKTxs-1))
	}
	os.Exit(1)
}
