// Command parthtm-bench regenerates the tables and figures of the Part-HTM
// paper's evaluation against this repository's simulated best-effort HTM.
//
// Usage:
//
//	parthtm-bench -exp table1            # one experiment
//	parthtm-bench -exp all               # everything, in paper order
//	parthtm-bench -list                  # available experiment ids
//	parthtm-bench -exp fig4b -threads 1,2,4,8 -duration 1s
//	parthtm-bench -exp fig3a -systems Part-HTM,HTM-GL
//	parthtm-bench -exp chaos                 # fault-injection sweep
//	parthtm-bench -exp chaos -fault 0.25     # compare rate 0 vs 0.25
//
// Output is one aligned text table per experiment, with the same rows and
// series the paper's figures plot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		listExps = flag.Bool("list", false, "list available experiments")
		threads  = flag.String("threads", "", "comma-separated thread counts (default per experiment)")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement window per data point")
		systems  = flag.String("systems", "", "comma-separated systems (default per experiment)")
		cores    = flag.Int("cores", 4, "modelled physical cores (hyper-threading capacity scaling beyond this)")
		seed     = flag.Int64("seed", 1, "seed for the probabilistic hardware models")
		faultR   = flag.Float64("fault", 0, "chaos fault rate in [0,1]: replaces the chaos sweep with {0, rate}")
	)
	flag.Parse()
	if *faultR < 0 {
		*faultR = 0
	}
	if *faultR > 1 {
		*faultR = 1
	}

	if *listExps {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "parthtm-bench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.Options{
		Duration:  *duration,
		PhysCores: *cores,
		Seed:      *seed,
		FaultRate: *faultR,
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "parthtm-bench: bad -threads value %q\n", part)
				os.Exit(2)
			}
			opts.Threads = append(opts.Threads, n)
		}
	}
	if *systems != "" {
		for _, part := range strings.Split(*systems, ",") {
			opts.Systems = append(opts.Systems, strings.TrimSpace(part))
		}
	}

	run := func(e harness.Experiment) {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
	}

	if *expID == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	e, ok := harness.Find(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "parthtm-bench: unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
	run(e)
}
