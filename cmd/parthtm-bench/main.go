// Command parthtm-bench regenerates the tables and figures of the Part-HTM
// paper's evaluation against this repository's simulated best-effort HTM.
//
// Usage:
//
//	parthtm-bench -exp table1            # one experiment
//	parthtm-bench -exp all               # everything, in paper order
//	parthtm-bench -list                  # available experiment ids
//	parthtm-bench -exp fig4b -threads 1,2,4,8 -duration 1s
//	parthtm-bench -exp fig3a -systems Part-HTM,HTM-GL
//	parthtm-bench -exp chaos                 # fault-injection sweep
//	parthtm-bench -exp chaos -fault 0.25     # compare rate 0 vs 0.25
//	parthtm-bench -exp table1 -json          # structured output
//	parthtm-bench -exp all -json -out results.json
//
// By default each experiment prints one aligned text table, with the same
// rows and series the paper's figures plot. With -json the run instead
// emits one JSON document (a ResultSet: per-system commit-path splits,
// hardware abort taxonomy, and robustness counters included); -out writes
// the output to a file instead of stdout. Progress and timing go to stderr
// whenever stdout carries the artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		listExps = flag.Bool("list", false, "list available experiments")
		threads  = flag.String("threads", "", "comma-separated thread counts (default per experiment)")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement window per data point")
		systems  = flag.String("systems", "", "comma-separated systems (default per experiment)")
		cores    = flag.Int("cores", 4, "modelled physical cores (hyper-threading capacity scaling beyond this)")
		seed     = flag.Int64("seed", 1, "seed for the probabilistic hardware models")
		faultR   = flag.Float64("fault", 0, "chaos fault rate in [0,1]: replaces the chaos sweep with {0, rate}")
		jsonOut  = flag.Bool("json", false, "emit one JSON document (a ResultSet) instead of text tables")
		outPath  = flag.String("out", "", "write the output to this file instead of stdout")
	)
	flag.Parse()
	if *faultR < 0 {
		*faultR = 0
	}
	if *faultR > 1 {
		*faultR = 1
	}

	if *listExps {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "parthtm-bench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.Options{
		Duration:  *duration,
		PhysCores: *cores,
		Seed:      *seed,
		FaultRate: *faultR,
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "parthtm-bench: bad -threads value %q\n", part)
				os.Exit(2)
			}
			opts.Threads = append(opts.Threads, n)
		}
	}
	if *systems != "" {
		for _, part := range strings.Split(*systems, ",") {
			opts.Systems = append(opts.Systems, strings.TrimSpace(part))
		}
	}

	// Text to stdout streams as today; when the artifact is JSON or goes to
	// a file, progress moves to stderr and the artifact is written whole.
	streaming := !*jsonOut && *outPath == ""
	var set harness.ResultSet
	run := func(e harness.Experiment) {
		if streaming {
			fmt.Printf("== %s: %s\n", e.ID, e.Title)
		}
		start := time.Now()
		res, err := e.Execute(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if streaming {
			os.Stdout.WriteString(res.Text())
			fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		} else {
			fmt.Fprintf(os.Stderr, "== %s done in %.1fs\n", e.ID, time.Since(start).Seconds())
		}
		set.Results = append(set.Results, res)
	}

	if *expID == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
	} else {
		e, ok := harness.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "parthtm-bench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		run(e)
	}
	if streaming {
		return
	}

	var artifact []byte
	if *jsonOut {
		data, err := json.MarshalIndent(&set, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: encoding results: %v\n", err)
			os.Exit(1)
		}
		artifact = append(data, '\n')
	} else {
		var sb strings.Builder
		for _, res := range set.Results {
			fmt.Fprintf(&sb, "== %s: %s\n", res.ID, res.Title)
			sb.WriteString(res.Text())
			sb.WriteByte('\n')
		}
		artifact = []byte(sb.String())
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, artifact, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-bench: %v\n", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(artifact)
	}
}
