// Command parthtm-vet statically enforces this repository's transactional-
// memory discipline: the single-writer contract on tm.Counter, the ban on
// mixed atomic/plain access, the purity contract on transaction bodies,
// the hardware-transaction-window restrictions, the static footprint
// bounds on transaction bodies, and the domain commit walk order. See
// DESIGN.md §9 and §14.
//
// Stand-alone (the usual way):
//
//	go run ./cmd/parthtm-vet ./...
//	go run ./cmd/parthtm-vet -json ./...
//	go run ./cmd/parthtm-vet -sarif findings.sarif ./...
//
// Profile reconciliation — cross-check the static footprint bounds
// against a recorded tmprof series (see DESIGN.md §14):
//
//	go run ./cmd/parthtm-bench -exp heatmap -prof-out profile.json
//	go run ./cmd/parthtm-vet -prof profile.json ./internal/harness
//
// Under the standard vet driver (also covers files go vet selects):
//
//	go build -o /tmp/parthtm-vet ./cmd/parthtm-vet
//	go vet -vettool=/tmp/parthtm-vet ./...
//
// Exit status: 0 when no diagnostics, 2 when the analyzers found
// violations (or reconciliation found an underestimate), 1 on
// operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The two vet-driver protocol queries arrive before normal flag
	// parsing ever could (cmd/go passes them as the sole argument).
	if len(args) == 1 {
		switch args[0] {
		case "-flags":
			return printFlagsJSON()
		case "-V=full":
			fmt.Println("parthtm-vet version 1 (repro static-analysis suite)")
			return 0
		}
	}

	fs := flag.NewFlagSet("parthtm-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := fs.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to this file (stand-alone mode)")
	profIn := fs.String("prof", "", "reconcile static footprint bounds against this tmprof JSON series (stand-alone mode)")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: parthtm-vet [flags] [package patterns | file.cfg]\n\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-13s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()

	// Vet-driver mode: the single operand is a .cfg file.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		diags, err := analysis.RunUnitchecker(analyzers, rest[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
			return 1
		}
		return emit(diags, *jsonOut)
	}

	// Stand-alone mode.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	// Profile reconciliation mode: no analyzer diagnostics, just the
	// static-vs-observed footprint comparison.
	if *profIn != "" {
		mismatches, err := analysis.CheckProfile("", *profIn, patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
			return 1
		}
		for _, m := range mismatches {
			fmt.Fprintln(os.Stderr, m)
		}
		if len(mismatches) > 0 {
			return 2
		}
		fmt.Fprintf(os.Stderr, "parthtm-vet: profile reconciles with the static footprint bounds\n")
		return 0
	}

	diags, err := analysis.Check("", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
		return 1
	}
	if *sarifOut != "" {
		if err := writeSARIFFile(*sarifOut, analyzers, diags); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
			return 1
		}
	}
	return emit(diags, *jsonOut)
}

// writeSARIFFile writes diags as SARIF with paths relative to the
// working directory (the form code-scanning uploads expect).
func writeSARIFFile(path string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	base, _ := os.Getwd()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteSARIF(f, base, analyzers, diags); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emit prints diagnostics (text to stderr, or JSON to stdout) and
// returns the exit status.
func emit(diags []analysis.Diagnostic, jsonOut bool) int {
	if jsonOut {
		type jsonDiag struct {
			Posn     string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{Posn: d.Pos.String(), Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printFlagsJSON answers cmd/go's -flags query: the JSON list of flags
// the tool accepts, so `go vet -vettool` knows what it may forward.
func printFlagsJSON() int {
	type vetFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []vetFlag{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"}}
	for _, a := range analysis.All() {
		flags = append(flags, vetFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		return 1
	}
	fmt.Println(string(data))
	return 0
}
