// Command parthtm-vet statically enforces this repository's transactional-
// memory discipline: the single-writer contract on tm.Counter, the ban on
// mixed atomic/plain access, the purity contract on transaction bodies,
// and the hardware-transaction-window restrictions. See DESIGN.md §9.
//
// Stand-alone (the usual way):
//
//	go run ./cmd/parthtm-vet ./...
//	go run ./cmd/parthtm-vet -json ./...
//
// Under the standard vet driver (also covers files go vet selects):
//
//	go build -o /tmp/parthtm-vet ./cmd/parthtm-vet
//	go vet -vettool=/tmp/parthtm-vet ./...
//
// Exit status: 0 when no diagnostics, 2 when the analyzers found
// violations, 1 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The two vet-driver protocol queries arrive before normal flag
	// parsing ever could (cmd/go passes them as the sole argument).
	if len(args) == 1 {
		switch args[0] {
		case "-flags":
			return printFlagsJSON()
		case "-V=full":
			fmt.Println("parthtm-vet version 1 (repro static-analysis suite)")
			return 0
		}
	}

	fs := flag.NewFlagSet("parthtm-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: parthtm-vet [flags] [package patterns | file.cfg]\n\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-13s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()

	// Vet-driver mode: the single operand is a .cfg file.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		diags, err := analysis.RunUnitchecker(analyzers, rest[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
			return 1
		}
		return emit(diags, *jsonOut)
	}

	// Stand-alone mode.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	diags, err := analysis.Check("", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
		return 1
	}
	return emit(diags, *jsonOut)
}

// emit prints diagnostics (text to stderr, or JSON to stdout) and
// returns the exit status.
func emit(diags []analysis.Diagnostic, jsonOut bool) int {
	if jsonOut {
		type jsonDiag struct {
			Posn     string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{Posn: d.Pos.String(), Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "parthtm-vet: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printFlagsJSON answers cmd/go's -flags query: the JSON list of flags
// the tool accepts, so `go vet -vettool` knows what it may forward.
func printFlagsJSON() int {
	type vetFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []vetFlag{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"}}
	for _, a := range analysis.All() {
		flags = append(flags, vetFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name})
	}
	data, err := json.Marshal(flags)
	if err != nil {
		return 1
	}
	fmt.Println(string(data))
	return 0
}
